package sim

import (
	"fmt"
	"strings"

	"sbgp/internal/asgraph"
)

// Counts summarizes how much of the graph is secure at some point of the
// deployment process, by AS class.
type Counts struct {
	SecureASes  int // all secure ASes (ISPs + simplex stubs + CPs)
	SecureISPs  int
	SecureStubs int
	SecureCPs   int
}

// Round records what happened in one round of the deployment process.
// Utilities are measured in the state at the *start* of the round; the
// Deployed/Disabled actions are the flips those utilities triggered at
// the round's end.
type Round struct {
	// Deployed lists ISPs that turned S*BGP on at the end of this round.
	Deployed []int32
	// Disabled lists ISPs that turned S*BGP off (incoming model only).
	Disabled []int32
	// NewSimplexStubs lists stubs upgraded to simplex S*BGP by their
	// newly secure providers at the end of this round.
	NewSimplexStubs []int32
	// After counts the secure population after the round's flips.
	After Counts
	// UtilBase and UtilProj hold, when Config.RecordUtilities is set,
	// every AS's utility and projected utility in this round's starting
	// state, indexed by node. Entries are NaN for ASes that are not
	// deployment candidates (stubs, CPs, and — under outgoing utility —
	// already-secure ISPs, which never want to flip by Theorem 6.2).
	UtilBase []float64
	UtilProj []float64
	// Stats instruments this round's utility computation; nil unless
	// Config.RecordStats is set.
	Stats *RoundStats
}

// Result is the outcome of a deployment simulation.
type Result struct {
	// ISPs lists all ISP node indices (the deployment decision makers).
	ISPs []int32
	// PristineUtil is every ISP's utility in the all-insecure state,
	// before even the early adopters deployed — the "starting utility"
	// the paper normalizes by (Figure 4). Indexed by node; NaN for
	// non-ISPs.
	PristineUtil []float64
	// PristineStats instruments the pristine-baseline utility pass (the
	// computation behind PristineUtil); nil unless Config.RecordStats is
	// set. It is where a simulation pays its cold static work, so the
	// static cache/disk-tier counters of a run's very first pass show up
	// here rather than in any Round's Stats.
	PristineStats *RoundStats
	// Initial counts the secure population after seeding the early
	// adopters and their simplex stubs, before any round ran.
	Initial Counts
	// Rounds records each simulation round in order.
	Rounds []Round
	// FinalSecure is the final deployment state, indexed by node.
	FinalSecure []bool
	// Final counts the secure population in the final state.
	Final Counts
	// Stable reports whether the process reached a state where no ISP
	// wants to change its action.
	Stable bool
	// Oscillated reports that the process revisited an earlier state
	// (possible only under incoming utility, Theorem 7.1). CycleStart is
	// the round index of the state's first occurrence and CycleLen the
	// period.
	Oscillated bool
	CycleStart int
	CycleLen   int
}

// NumRounds returns how many rounds ran.
func (r *Result) NumRounds() int { return len(r.Rounds) }

// SecureFractionASes returns the final fraction of all ASes secure; 0
// for an empty graph.
func (r *Result) SecureFractionASes() float64 {
	if len(r.FinalSecure) == 0 {
		return 0
	}
	return float64(r.Final.SecureASes) / float64(len(r.FinalSecure))
}

// SecureFractionISPs returns the final fraction of ISPs secure.
func (r *Result) SecureFractionISPs() float64 {
	if len(r.ISPs) == 0 {
		return 0
	}
	return float64(r.Final.SecureISPs) / float64(len(r.ISPs))
}

// AdoptionCurve returns the cumulative number of secure ASes and ISPs
// after each round, starting with the initial seeding (index 0).
func (r *Result) AdoptionCurve() (ases, isps []int) {
	ases = append(ases, r.Initial.SecureASes)
	isps = append(isps, r.Initial.SecureISPs)
	for _, rd := range r.Rounds {
		ases = append(ases, rd.After.SecureASes)
		isps = append(isps, rd.After.SecureISPs)
	}
	return ases, isps
}

// NewPerRound returns the number of ASes and ISPs that became secure in
// each round (the paper's Figure 3 series).
func (r *Result) NewPerRound() (ases, isps []int) {
	prevA, prevI := r.Initial.SecureASes, r.Initial.SecureISPs
	for _, rd := range r.Rounds {
		ases = append(ases, rd.After.SecureASes-prevA)
		isps = append(isps, rd.After.SecureISPs-prevI)
		prevA, prevI = rd.After.SecureASes, rd.After.SecureISPs
	}
	return ases, isps
}

// Summary renders a human-readable digest of the run.
func (r *Result) Summary(g *asgraph.Graph) string {
	var b strings.Builder
	fmt.Fprintf(&b, "rounds: %d, stable: %v", r.NumRounds(), r.Stable)
	if r.Oscillated {
		fmt.Fprintf(&b, ", OSCILLATION (first state at round %d, period %d)", r.CycleStart, r.CycleLen)
	}
	fmt.Fprintf(&b, "\nsecure ASes: %d/%d (%.1f%%)", r.Final.SecureASes, g.N(),
		100*r.SecureFractionASes())
	fmt.Fprintf(&b, "\nsecure ISPs: %d/%d (%.1f%%)", r.Final.SecureISPs, len(r.ISPs),
		100*r.SecureFractionISPs())
	fmt.Fprintf(&b, "\nsecure stubs: %d, secure CPs: %d\n", r.Final.SecureStubs, r.Final.SecureCPs)
	return b.String()
}

func countSecure(g *asgraph.Graph, secure []bool) Counts {
	var c Counts
	for i, s := range secure {
		if !s {
			continue
		}
		c.SecureASes++
		switch g.Class(int32(i)) {
		case asgraph.ISP:
			c.SecureISPs++
		case asgraph.Stub:
			c.SecureStubs++
		case asgraph.ContentProvider:
			c.SecureCPs++
		}
	}
	return c
}

package sim

import (
	"math"
	"testing"

	"sbgp/internal/asgraph"
	"sbgp/internal/routing"
)

func thetaTestGraph(t *testing.T) *asgraph.Graph {
	t.Helper()
	// The θ-blocking graph from TestThetaBlocksDeployment: A's
	// deploy/no-deploy threshold sits at θ ≈ 0.769.
	return asgraph.NewBuilder().
		AddCustomer(1, 2).AddCustomer(1, 3).
		AddCustomer(2, 4).AddCustomer(3, 4).
		AddCustomer(2, 6).
		SetWeight(1, 10).
		MustBuild()
}

func TestThetaByNodeOverrides(t *testing.T) {
	g := thetaTestGraph(t)
	iT, iA, iB := g.Index(1), g.Index(2), g.Index(3)

	// Global θ would allow A to deploy, but A's personal threshold is
	// prohibitive.
	byNode := make([]float64, g.N())
	for i := range byNode {
		byNode[i] = math.NaN()
	}
	byNode[iA] = 5.0
	cfg := Config{
		Model:          Outgoing,
		Theta:          0.05,
		ThetaByNode:    byNode,
		EarlyAdopters:  []int32{iT, iB},
		StubsBreakTies: true,
		Tiebreaker:     routing.LowestIndex{},
	}
	res := MustNew(g, cfg).Run()
	if res.FinalSecure[iA] {
		t.Error("A deployed despite a prohibitive personal threshold")
	}

	// And the reverse: a permissive personal threshold under a
	// prohibitive global one.
	byNode[iA] = 0.05
	cfg.Theta = 5.0
	res = MustNew(g, cfg).Run()
	if !res.FinalSecure[iA] {
		t.Error("A should deploy on its permissive personal threshold")
	}
}

func TestThetaJitterZeroMatchesUniform(t *testing.T) {
	g := thetaTestGraph(t)
	iT, iB := g.Index(1), g.Index(3)
	base := Config{
		Model:          Outgoing,
		Theta:          0.05,
		EarlyAdopters:  []int32{iT, iB},
		StubsBreakTies: true,
		Tiebreaker:     routing.LowestIndex{},
	}
	jittered := base
	jittered.ThetaJitter = 0
	jittered.ThetaSeed = 99
	r1 := MustNew(g, base).Run()
	r2 := MustNew(g, jittered).Run()
	for i := range r1.FinalSecure {
		if r1.FinalSecure[i] != r2.FinalSecure[i] {
			t.Fatalf("zero jitter changed the outcome at node %d", i)
		}
	}
}

func TestThetaJitterBounds(t *testing.T) {
	g := thetaTestGraph(t)
	s := MustNew(g, Config{Theta: 0.10, ThetaJitter: 0.5, ThetaSeed: 3})
	for i, th := range s.theta {
		if th < 0.05-1e-12 || th > 0.15+1e-12 {
			t.Errorf("node %d: θ=%v outside [0.05, 0.15]", i, th)
		}
	}
	// Deterministic for a fixed seed.
	s2 := MustNew(g, Config{Theta: 0.10, ThetaJitter: 0.5, ThetaSeed: 3})
	for i := range s.theta {
		if s.theta[i] != s2.theta[i] {
			t.Fatal("threshold draw not deterministic")
		}
	}
	// Different seeds differ somewhere.
	s3 := MustNew(g, Config{Theta: 0.10, ThetaJitter: 0.5, ThetaSeed: 4})
	same := true
	for i := range s.theta {
		if s.theta[i] != s3.theta[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds drew identical thresholds")
	}
}

func TestThetaJitterValidation(t *testing.T) {
	g := thetaTestGraph(t)
	if _, err := New(g, Config{ThetaJitter: -0.1}); err == nil {
		t.Error("negative jitter accepted")
	}
	if _, err := New(g, Config{ThetaJitter: 1.5}); err == nil {
		t.Error("jitter > 1 accepted")
	}
	if _, err := New(g, Config{ThetaByNode: make([]float64, 2)}); err == nil {
		t.Error("short ThetaByNode accepted")
	}
}

func TestThetaJitterStraddlesCliff(t *testing.T) {
	// A's decision threshold sits at ≈0.769; with θ=0.769 and 30%
	// jitter, different seeds should produce both outcomes — the jitter
	// smooths the adoption cliff into a probability.
	g := thetaTestGraph(t)
	iT, iA, iB := g.Index(1), g.Index(2), g.Index(3)
	deployed, blocked := 0, 0
	for seed := int64(0); seed < 20; seed++ {
		cfg := Config{
			Model:          Outgoing,
			Theta:          0.769,
			ThetaJitter:    0.3,
			ThetaSeed:      seed,
			EarlyAdopters:  []int32{iT, iB},
			StubsBreakTies: true,
			Tiebreaker:     routing.LowestIndex{},
		}
		if MustNew(g, cfg).Run().FinalSecure[iA] {
			deployed++
		} else {
			blocked++
		}
	}
	if deployed == 0 || blocked == 0 {
		t.Errorf("jitter at the cliff should mix outcomes; got %d deployed / %d blocked", deployed, blocked)
	}
}

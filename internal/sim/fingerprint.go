package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"strconv"
	"strings"

	"sbgp/internal/routing"
)

// Fingerprint returns a content key identifying the deployment
// trajectory this configuration produces on a given graph: two configs
// with equal fingerprints run the exact same simulation — same
// candidates, same per-round decisions, same final state — so a cached
// Result for one can serve the other.
//
// The fingerprint covers every field that shapes the trajectory (model,
// thresholds, early adopters, tie-break policy, projection semantics,
// round cap) after applying the same normalization Run does (nil
// tiebreaker, zero MaxRounds, ThetaSeed ignored without jitter). It
// deliberately excludes the fields that only instrument the run:
//
//   - Workers: decisions are worker-count invariant (the engine's
//     per-worker float merges differ only in final ulps, absorbed by
//     decisionEpsilon; see TestRunDeterministicAcrossWorkers). Recorded
//     utilities may therefore differ in the last ulp across pool sizes.
//   - RecordUtilities, RecordStats, RecordMemStats: observability only.
//     Callers that cache Results should record superset instrumentation
//     so one entry serves every requester.
//   - StaticCacheBytes: a performance/memory knob. Cached statics are
//     byte-identical to cold computation (see TestStaticCacheResultInvariant),
//     so the budget cannot change any Result.
//   - DynamicCacheBytes: likewise — replayed contributions are the
//     recorded bits re-summed in the cold engine's order (see
//     TestDynCacheResultInvariant), so no budget, including forced
//     eviction, can change any Result.
//   - SharedStatics: likewise — a shared graph-level snapshot is the
//     same bits a private cache or cold computation produces (see
//     TestSharedStaticsResultInvariant).
//   - StaticStoreDir: likewise — a disk-stored blob is CRC-guarded,
//     decode-validated, and reproduces PrepareDest's output bit for bit;
//     any validation failure recomputes (see TestDiskStoreResultInvariant),
//     so no store state (absent, cold, warm, corrupt) can change any
//     Result.
//   - StaticPrefetch: likewise — a prefetched snapshot is the same
//     bytes the worker's own PrepareDest would produce, admitted by the
//     same consumer in the same stripe order (see
//     TestPrefetchResultInvariant), so no depth can change any Result.
//   - Executor: execution placement only. A distributed executor with
//     the same logical shard count is bit-identical to the in-process
//     engine (see internal/dist's differential tests), and any other
//     shard count falls under the Workers argument above.
//   - NoProjectionBatch: a performance knob. The batched predictor only
//     skips projections whose delta is exactly zero (see
//     TestQuickFlipPrediction), so disabling it recomputes the same
//     bits the long way (see TestNoProjectionBatchResultInvariant).
//   - NoStreamResolve: a performance knob. The streaming resolver
//     replays decideNode's decisions over the same packed bytes, and a
//     pristine-contribution sidecar replays the recorded float64 bit
//     patterns the fresh support loop would add in the same order (see
//     TestStreamingResolveResultInvariant), so either setting produces
//     the same bits.
func (c Config) Fingerprint() string {
	var b strings.Builder
	b.WriteString("sim-v1|")
	fmt.Fprintf(&b, "model=%s|", c.Model)
	fmt.Fprintf(&b, "theta=%s|", ffmt(c.Theta))
	b.WriteString("adopters=")
	for _, a := range c.EarlyAdopters {
		fmt.Fprintf(&b, "%d,", a)
	}
	b.WriteString("|")
	fmt.Fprintf(&b, "stubsbreak=%t|", c.StubsBreakTies)
	tb := c.Tiebreaker
	if tb == nil {
		tb = routing.HashTiebreaker{}
	}
	fmt.Fprintf(&b, "tb=%s|", routing.TiebreakerFingerprint(tb))
	maxRounds := c.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 250
	}
	fmt.Fprintf(&b, "maxrounds=%d|", maxRounds)
	if c.ThetaJitter > 0 {
		fmt.Fprintf(&b, "jitter=%s|seed=%d|", ffmt(c.ThetaJitter), c.ThetaSeed)
	}
	if c.ThetaByNode != nil {
		b.WriteString("thetabynode=")
		for _, th := range c.ThetaByNode {
			b.WriteString(ffmt(th))
			b.WriteString(",")
		}
		b.WriteString("|")
	}
	fmt.Fprintf(&b, "projectstubs=%t", c.ProjectStubUpgrades)

	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:16])
}

// ffmt renders a float64 with the shortest representation that parses
// back to the same value, so fingerprints are exact.
func ffmt(x float64) string {
	if math.IsNaN(x) {
		return "NaN"
	}
	return strconv.FormatFloat(x, 'g', -1, 64)
}

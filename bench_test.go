package sbgp

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (see DESIGN.md's per-experiment index): each
// Benchmark<Id> wraps the corresponding runner from
// internal/experiments at a laptop-scale graph size. Micro-benchmarks
// for the routing and simulation hot paths come first.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Regenerate one figure with full output instead:
//
//	go run ./cmd/experiments -run fig8 -n 2000

import (
	"testing"

	"sbgp/internal/experiments"
	"sbgp/internal/routing"
)

const benchN = 400 // graph size for the table/figure macro-benchmarks

func benchGraph(b *testing.B, n int) *Graph {
	b.Helper()
	g := MustGenerateTopology(DefaultTopology(n, 42))
	g.SetCPTrafficFraction(0.10)
	return g
}

// --- micro-benchmarks: the algorithmic core ---

// BenchmarkComputeStatic measures the three-stage BFS (Observation C.1
// static info) for one destination.
func BenchmarkComputeStatic(b *testing.B) {
	g := benchGraph(b, 2000)
	w := routing.NewWorkspace(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.ComputeStatic(int32(i % g.N()))
	}
}

// BenchmarkComputeStatic2500 measures a full cold static sweep — one
// three-stage BFS per destination, every destination once — at N=2500.
// This is the workload the O(reachable + edges) ComputeStatic rewrite
// targets: the sweep is what a simulation's pristine pass pays before
// any cache can help, and per-destination cost must track the reachable
// set, not N.
func BenchmarkComputeStatic2500(b *testing.B) {
	benchStaticSweep(b, 2500)
}

// BenchmarkComputeStaticPaper is the same sweep at the paper's
// N=36,964 (its Cyclops AS-graph snapshot). Skipped under -short.
func BenchmarkComputeStaticPaper(b *testing.B) {
	if testing.Short() {
		b.Skip("paper-scale sweep skipped in short mode")
	}
	benchStaticSweep(b, 36964)
}

// BenchmarkDecodePacked2500 measures rehydrating one packed static
// snapshot into a workspace — the per-Get cost a budget-bound cache
// pays once snapshots live as arena blobs (DESIGN.md §5g). The
// reported metrics pin the density win: packed vs in-memory bytes per
// destination for the same N=2500 sweep.
func BenchmarkDecodePacked2500(b *testing.B) {
	g := benchGraph(b, 2500)
	w := routing.NewWorkspace(g)
	blobs := make([][]byte, g.N())
	var packedBytes, memBytes int64
	for d := int32(0); d < int32(g.N()); d++ {
		s := w.PrepareDest(d, HashTiebreaker{})
		blobs[d] = routing.AppendPacked(nil, s, g)
		packedBytes += int64(len(blobs[d]))
		memBytes += s.MemBytes()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.DecodePacked(blobs[i%len(blobs)]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(packedBytes)/float64(g.N()), "packedB/dest")
	b.ReportMetric(float64(memBytes)/float64(g.N()), "unpackedB/dest")
}

func benchStaticSweep(b *testing.B, n int) {
	b.Helper()
	g := benchGraph(b, n)
	w := routing.NewWorkspace(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for d := int32(0); d < int32(g.N()); d++ {
			w.ComputeStatic(d)
		}
	}
}

// BenchmarkResolve measures one pass of the fast routing tree algorithm
// (Appendix C.2) against precomputed static info.
func BenchmarkResolve(b *testing.B) {
	g := benchGraph(b, 2000)
	w := routing.NewWorkspace(g)
	tb := HashTiebreaker{}
	s := w.PrepareDest(0, tb)
	secure := make([]bool, g.N())
	breaks := make([]bool, g.N())
	for i := range secure {
		secure[i] = i%2 == 0
		breaks[i] = true
	}
	var tree routing.Tree
	tree.Clear(g.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.ResolveInto(&tree, s, secure, breaks, nil, nil, tb)
	}
}

// BenchmarkSimRound measures one full deployment round (utilities plus
// projections for every candidate ISP) on a 1000-AS graph.
func BenchmarkSimRound(b *testing.B) {
	g := benchGraph(b, 1000)
	cfg := Config{
		Model:          Outgoing,
		Theta:          0.05,
		EarlyAdopters:  CPsPlusTopISPs(g, 5),
		StubsBreakTies: true,
		MaxRounds:      1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(g, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullDeployment measures a complete case-study run to a
// stable state.
func BenchmarkFullDeployment(b *testing.B) {
	g := benchGraph(b, benchN)
	cfg := Config{
		Model:          Outgoing,
		Theta:          0.05,
		EarlyAdopters:  CPsPlusTopISPs(g, 5),
		StubsBreakTies: true,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(g, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncomingDeployment is the incoming-utility counterpart
// (candidates include secure ISPs, so rounds are costlier).
func BenchmarkIncomingDeployment(b *testing.B) {
	g := benchGraph(b, benchN)
	cfg := Config{
		Model:          Incoming,
		Theta:          0.05,
		EarlyAdopters:  CPsPlusTopISPs(g, 5),
		StubsBreakTies: true,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(g, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProjectStubUpgrades measures the ablation where deployment
// actions bundle simplex stub upgrades into the projection.
func BenchmarkProjectStubUpgrades(b *testing.B) {
	g := benchGraph(b, benchN)
	cfg := Config{
		Model:               Outgoing,
		Theta:               0.05,
		EarlyAdopters:       CPsPlusTopISPs(g, 5),
		StubsBreakTies:      true,
		ProjectStubUpgrades: true,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(g, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- macro-benchmarks: one per paper table and figure ---

func benchExperiment(b *testing.B, id string, n int) {
	b.Helper()
	opt := experiments.Options{N: n, Seed: 42, X: 0.10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(id, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Diamonds(b *testing.B)          { benchExperiment(b, "table1", benchN) }
func BenchmarkTable2GraphStats(b *testing.B)        { benchExperiment(b, "table2", benchN) }
func BenchmarkTable3CPPathLen(b *testing.B)         { benchExperiment(b, "table3", benchN) }
func BenchmarkTable4Degrees(b *testing.B)           { benchExperiment(b, "table4", benchN) }
func BenchmarkFig2Diamond(b *testing.B)             { benchExperiment(b, "fig2", benchN) }
func BenchmarkFig3AdoptionPerRound(b *testing.B)    { benchExperiment(b, "fig3", benchN) }
func BenchmarkFig4UtilityTrajectories(b *testing.B) { benchExperiment(b, "fig4", benchN) }
func BenchmarkFig5ProjectedVsStarting(b *testing.B) { benchExperiment(b, "fig5", benchN) }
func BenchmarkFig6AdoptionByDegree(b *testing.B)    { benchExperiment(b, "fig6", benchN) }
func BenchmarkFig7SecurePathGrowth(b *testing.B)    { benchExperiment(b, "fig7", benchN) }
func BenchmarkFig8ThetaSweep(b *testing.B)          { benchExperiment(b, "fig8", benchN) }
func BenchmarkFig9SecurePaths(b *testing.B)         { benchExperiment(b, "fig9", benchN) }
func BenchmarkFig10Tiebreak(b *testing.B)           { benchExperiment(b, "fig10", benchN) }
func BenchmarkFig11StubTiebreak(b *testing.B)       { benchExperiment(b, "fig11", benchN) }
func BenchmarkFig12CPvsTier1(b *testing.B)          { benchExperiment(b, "fig12", benchN) }
func BenchmarkFig13TurnOff(b *testing.B)            { benchExperiment(b, "fig13", benchN) }
func BenchmarkFig14ProjectionAccuracy(b *testing.B) { benchExperiment(b, "fig14", benchN) }
func BenchmarkFig15PartialAttack(b *testing.B)      { benchExperiment(b, "fig15", benchN) }
func BenchmarkFig16SetCover(b *testing.B)           { benchExperiment(b, "fig16", benchN) }
func BenchmarkFig17Oscillator(b *testing.B)         { benchExperiment(b, "fig17", benchN) }
func BenchmarkSec73TurnOffScan(b *testing.B)        { benchExperiment(b, "sec73", benchN) }
